// Loadbalance: the paper's first motivation - "achieve a distribution of
// the data to avoid load imbalances in parallel and distributed
// computing".
//
// A batch of tasks arrives sorted by cost (heavy jobs clustered at the
// front, a common real pattern: large customers first, hot shards first).
// Assigning contiguous chunks to workers then overloads worker 0. A
// uniform random permutation of the task vector - computed in parallel by
// the very machine that will run the tasks - evens the load to within
// sqrt-deviations, with O(n/p) shuffle work per worker.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	"randperm"
)

const (
	nTasks  = 400_000
	workers = 16
)

// taskCost models a skewed, sorted workload: a few very heavy tasks, a
// long tail of cheap ones (Zipf-like, sorted descending).
func taskCost(rank int64) int64 {
	return 1 + int64(float64(nTasks)/float64(rank+1))
}

func main() {
	tasks := make([]int64, nTasks)
	for i := range tasks {
		tasks[i] = int64(i) // task id; cost = taskCost(id)
	}

	fmt.Printf("%d tasks on %d workers; cost skew: heaviest=%d, lightest=%d\n\n",
		nTasks, workers, taskCost(0), taskCost(nTasks-1))

	report := func(name string, assignment []int64) {
		loads := make([]int64, workers)
		chunk := nTasks / workers
		for i, id := range assignment {
			w := i / chunk
			if w >= workers {
				w = workers - 1
			}
			loads[w] += taskCost(id)
		}
		var minL, maxL, sum int64
		minL = loads[0]
		for _, l := range loads {
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
			sum += l
		}
		mean := float64(sum) / float64(workers)
		fmt.Printf("%-22s makespan=%-12d mean=%-12.0f max/mean=%.3f min/mean=%.3f\n",
			name, maxL, mean, float64(maxL)/mean, float64(minL)/mean)
	}

	// Naive contiguous assignment of the sorted vector.
	report("sorted (no shuffle):", tasks)

	// Parallel random permutation on the same worker pool.
	shuffled, rep, err := randperm.ParallelShuffle(tasks, randperm.Options{
		Procs: workers,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("after parallel shuffle:", shuffled)

	fmt.Printf("\nshuffle cost: max %d ops/worker for %d tasks/worker (constant factor %.2f)\n",
		rep.MaxOps, nTasks/workers, float64(rep.MaxOps)/float64(nTasks/workers))
}
