// Cluster: boot a 3-node permd cluster in one process and verify that
// the shuffle it serves is byte-identical to a single-node run.
//
// The scenario: a permutation of a large ID space is too big (or too
// hot) to serve from one machine, so three permd nodes each own a
// contiguous shard of it. Every node answers for the whole domain —
// spans it owns come from its local shard, the rest are routed to the
// owning peer — and the network determinism contract promises the
// assembled bytes equal a single-process run with the same
// (seed, n, p).
//
// This example is the contract made runnable: it starts the exact
// handler cmd/permd serves — three times, wired as a cluster via the
// same Config fields the -peers/-node flags fill — pulls the whole
// permutation through each node over real loopback HTTP, and compares
// against the library's in-process BackendCluster output.
//
//	go run ./examples/cluster
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"

	"randperm"
	"randperm/internal/service"
)

const (
	n     = int64(100_000)
	seed  = uint64(42)
	procs = 9 // cluster-wide decomposition width: 3 blocks per node
	nodes = 3
)

func main() {
	// The daemon side: three permd handlers on loopback listeners,
	// each told the full peer list and its own index — exactly what
	//
	//	permd -node k -peers http://...,http://...,http://...
	//
	// does behind flag parsing.
	listeners := make([]net.Listener, nodes)
	peers := make([]string, nodes)
	for k := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[k] = ln
		peers[k] = "http://" + ln.Addr().String()
	}
	for k := range listeners {
		handler, err := service.New(service.Config{
			Procs:        procs,
			MaxN:         n,
			ClusterPeers: peers,
			ClusterNode:  k,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: handler}
		go srv.Serve(listeners[k])
		defer srv.Close()
	}
	fmt.Printf("3-node permd cluster up: each node owns %d of %d blocks of [0, %d)\n\n",
		procs/nodes, procs, n)

	// The reference: the library's own BackendCluster run. One process,
	// no network — the bytes every node must reproduce.
	id := make([]int64, n)
	for i := range id {
		id[i] = int64(i)
	}
	want, _, err := randperm.ParallelShuffle(id, randperm.Options{
		Procs:   procs,
		Seed:    seed,
		Backend: randperm.BackendCluster,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The client side: pull the full permutation from each node in
	// turn. Every node serves the whole domain — watch the cluster
	// counters to see who proxied what.
	for k, base := range peers {
		got, err := fetchAll(base)
		if err != nil {
			log.Fatal(err)
		}
		if len(got) != len(want) {
			log.Fatalf("node %d returned %d values, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				log.Fatalf("node %d diverged from the single-node run at position %d", k, i)
			}
		}
		fmt.Printf("node %d: full pull of %d values — byte-identical to the single-node run\n", k, n)
	}

	// A point query routed to the far end of the domain, from node 0.
	resp, err := http.Get(fmt.Sprintf("%s/v1/perm/%d/at?n=%d&i=%d&backend=cluster", peers[0], seed, n, n-1))
	if err != nil {
		log.Fatal(err)
	}
	last, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nπ(%d) asked of node 0, owned by node %d: %s", n-1, nodes-1, last)
	fmt.Printf("library says:                            %d\n", want[n-1])
}

// fetchAll pulls the whole permutation from one node's public chunk
// endpoint, one decimal per line.
func fetchAll(base string) ([]int64, error) {
	url := fmt.Sprintf("%s/v1/perm/%d/chunk?n=%d&len=%d&backend=cluster", base, seed, n, n)
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	var vals []int64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		v, err := strconv.ParseInt(sc.Text(), 10, 64)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, sc.Err()
}
