// Stream: replay one shard of a permuted ID space without ever
// materializing the permutation.
//
// The serving scenario behind the streaming API: a fleet of 8 replayers
// must walk 100 million user IDs in a random — but agreed and
// reproducible — order, each replayer owning one contiguous shard of
// the permuted order. With a materializing backend every replayer would
// buy an 800 MB permutation buffer (or a coordinator would, and ship
// it); with BackendBijective each replayer pulls its shard through a
// Permuter page by page, holding one 64 KiB page and a few Feistel
// round keys, and never touches the other shards' indexes at all.
//
//	go run ./examples/stream
package main

import (
	"fmt"
	"log"
	"time"

	"randperm"
)

func main() {
	const (
		nIDs     = 100_000_000 // the permuted ID space [0, nIDs)
		shards   = 8           // replayer fleet size
		shard    = 3           // the one shard THIS process replays
		pageSize = 1 << 13     // IDs pulled per Chunk call
	)

	// Every replayer constructs the identical handle: the permutation
	// is a pure function of (Seed, nIDs), so no coordinator needs to
	// ship any state beyond the seed.
	pm, err := randperm.NewPermuter(nIDs, randperm.Options{
		Seed:    20260729,
		Backend: randperm.BackendBijective,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Shard boundaries over the *permuted order*: shard s replays
	// positions [lo, hi) of the permutation, which scatter uniformly
	// over the whole ID space.
	sizes := randperm.EvenBlocks(nIDs, shards)
	lo := int64(0)
	for s := 0; s < shard; s++ {
		lo += sizes[s]
	}
	hi := lo + sizes[shard]

	page := make([]int64, pageSize)
	var (
		replayed int64
		checksum uint64
		minID    = int64(nIDs)
		maxID    = int64(-1)
	)
	start := time.Now()
	for pos := lo; pos < hi; {
		want := hi - pos
		if want > pageSize {
			want = pageSize
		}
		m, err := pm.Chunk(page[:want], pos)
		if err != nil {
			log.Fatal(err)
		}
		for _, id := range page[:m] {
			// A real replayer would issue the request for `id` here.
			checksum = checksum*0x100000001B3 ^ uint64(id)
			if id < minID {
				minID = id
			}
			if id > maxID {
				maxID = id
			}
		}
		replayed += int64(m)
		pos += int64(m)
	}
	elapsed := time.Since(start)

	fmt.Printf("shard %d/%d of a permuted space of %d IDs\n", shard, shards, nIDs)
	fmt.Printf("replayed positions [%d, %d): %d IDs in %v (%.1f ns/ID)\n",
		lo, hi, replayed, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/float64(replayed))
	fmt.Printf("IDs span [%d, %d] — the shard covers the whole space uniformly\n", minID, maxID)
	fmt.Printf("order checksum %x — identical on every replayer and every run\n", checksum)

	// Which ID does a given position replay? At answers the point query
	// in O(1), without scanning the shard or materializing anything —
	// auditing one position of the agreed order costs the same as
	// auditing none.
	pos := lo + 12345
	id := pm.At(pos)
	fmt.Printf("position %d replays ID %d (O(1) lookup, nothing materialized)\n", pos, id)
}
