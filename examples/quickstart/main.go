// Quickstart: shuffle a vector on a simulated coarse grained machine.
//
// The program permutes one million integers with the paper's Algorithm 1
// on 8 simulated processors, verifies the result is a permutation, and
// prints the resource report that Theorem 1 bounds: every per-processor
// quantity is O(n/p).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"randperm"
)

func main() {
	const n = 1_000_000
	const p = 8

	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}

	out, report, err := randperm.ParallelShuffle(data, randperm.Options{
		Procs:  p,
		Seed:   2003, // SPAA 2003
		Matrix: randperm.MatrixOpt,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify: out must contain 0..n-1 exactly once.
	seen := make([]bool, n)
	for _, v := range out {
		if v < 0 || v >= n || seen[v] {
			log.Fatalf("not a permutation at value %d", v)
		}
		seen[v] = true
	}

	fmt.Printf("shuffled %d items on %d processors\n", n, p)
	fmt.Printf("first ten: %v\n", out[:10])
	fmt.Printf("supersteps:           %d\n", report.Supersteps)
	fmt.Printf("max ops/processor:    %d  (%.2fx the block size n/p=%d)\n",
		report.MaxOps, float64(report.MaxOps)/float64(n/p), n/p)
	fmt.Printf("max bytes/processor:  %d\n", report.MaxBytes)
	fmt.Printf("max draws/processor:  %d  (%.2f draws per local item)\n",
		report.MaxDraws, float64(report.MaxDraws)/float64(n/p))
	fmt.Printf("total work:           %d ops for %d items (work-optimal: O(n))\n",
		report.TotalOps, n)
}
