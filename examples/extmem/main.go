// Extmem: the paper's outlook (Section 6) - reusing the coarse grained
// decomposition to build a *sequential* shuffle that avoids the cache
// misses of the straightforward algorithm, in the spirit of coarse
// grained algorithms driving external-memory algorithms (Cormen and
// Goodrich 1996; Dehne et al. 1997).
//
// The program shuffles a large vector twice - once with Fisher-Yates
// (random access over the whole array) and once with the matrix-based
// block shuffle (streaming scatter passes plus in-cache leaf shuffles) -
// and reports throughput. On data sets well beyond last-level cache the
// block shuffle's memory traffic advantage shows up as higher throughput.
//
//	go run ./examples/extmem [-n items]
package main

import (
	"flag"
	"fmt"
	"time"

	"randperm"
)

func main() {
	n := flag.Int("n", 16<<20, "number of int64 items to shuffle")
	flag.Parse()

	data := make([]int64, *n)
	for i := range data {
		data[i] = int64(i)
	}
	src := randperm.NewSource(6)

	fy := timeIt(func() { randperm.Shuffle(src, data) })
	bs := timeIt(func() { randperm.BlockShuffle(src, data) })

	fmt.Printf("items: %d (%.1f MiB)\n", *n, float64(*n)*8/(1<<20))
	fmt.Printf("fisher-yates:   %v  (%.1f ns/item)\n", fy.Round(time.Millisecond),
		float64(fy.Nanoseconds())/float64(*n))
	fmt.Printf("block shuffle:  %v  (%.1f ns/item)\n", bs.Round(time.Millisecond),
		float64(bs.Nanoseconds())/float64(*n))
	fmt.Printf("speedup:        %.2fx\n", float64(fy)/float64(bs))

	// Both passes produced uniform permutations; spot check the result
	// is still a permutation.
	var xor int64
	for _, v := range data {
		xor ^= v
	}
	var want int64
	for i := int64(0); i < int64(*n); i++ {
		want ^= i
	}
	if xor != want {
		panic("result is not a permutation")
	}
	fmt.Println("verified: output is a permutation of the input")
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
