// Deck: the paper's "computer games" motivation - Monte Carlo estimation
// of card probabilities from uniformly shuffled decks.
//
// The demo estimates the probability that a 5-card poker hand contains a
// pair or better, comparing the Monte Carlo estimate against the exact
// combinatorial value 1 - (13 choose 5)*4^5*... A biased shuffler would
// visibly skew the estimate; the library's uniform shuffle converges to
// the exact answer.
//
//	go run ./examples/deck
package main

import (
	"fmt"

	"randperm"
)

func main() {
	src := randperm.NewSource(52)
	deck := make([]int, 52)
	for i := range deck {
		deck[i] = i // card = suit*13 + rank
	}

	const hands = 500_000
	paired := 0
	var rankSeen [13]bool
	for h := 0; h < hands; h++ {
		randperm.Shuffle(src, deck)
		for r := range rankSeen {
			rankSeen[r] = false
		}
		hasPair := false
		for _, card := range deck[:5] {
			r := card % 13
			if rankSeen[r] {
				hasPair = true
				break
			}
			rankSeen[r] = true
		}
		if hasPair {
			paired++
		}
	}

	est := float64(paired) / float64(hands)
	// Exact: P(no pair) = C(13,5) * 4^5 / C(52,5); includes straights
	// and flushes, which still have five distinct ranks.
	exact := 1 - 1287.0*1024.0/2598960.0
	fmt.Printf("hands dealt:            %d\n", hands)
	fmt.Printf("P(pair or better) est:  %.5f\n", est)
	fmt.Printf("P(pair or better) ex.:  %.5f\n", exact)
	fmt.Printf("absolute error:         %.5f (Monte Carlo sd ~ %.5f)\n",
		abs(est-exact), 0.0007)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
