// ablation_bench_test.go measures the design choices DESIGN.md calls
// out: the hypergeometric sampler split (chop-down vs HRUA across the
// parameter spread), the block shuffle's fanout and leaf threshold, the
// multivariate sampler arrangement (iterative vs recursive), and the
// all-to-all exchange granularity.
package randperm_test

import (
	"fmt"
	"testing"

	"randperm/internal/commat"
	"randperm/internal/core"
	"randperm/internal/hyper"
	"randperm/internal/mhyper"
	"randperm/internal/pro"
	"randperm/internal/seqperm"
	"randperm/internal/xrand"
)

// BenchmarkAblationHyperSampler pits the two exact samplers against each
// other across the spread regime, bracketing the sd<=64 switch.
func BenchmarkAblationHyperSampler(b *testing.B) {
	cases := []struct {
		name    string
		t, w, p int64
	}{
		{"sd~5", 100, 300, 500},
		{"sd~22", 2000, 6000, 10000},
		{"sd~70", 20000, 60000, 100000},
		{"sd~220", 200000, 600000, 1000000},
		{"sd~2200", 20000000, 60000000, 100000000},
	}
	for _, c := range cases {
		b.Run("chop/"+c.name, func(b *testing.B) {
			src := xrand.NewXoshiro256(1)
			for i := 0; i < b.N; i++ {
				hyper.SampleChop(src, c.t, c.w, c.p)
			}
		})
		b.Run("hrua/"+c.name, func(b *testing.B) {
			src := xrand.NewXoshiro256(1)
			for i := 0; i < b.N; i++ {
				hyper.SampleHRUA(src, c.t, c.w, c.p)
			}
		})
	}
}

// BenchmarkAblationBlockShuffleFanout sweeps the bucket fanout of the
// cache-friendly shuffle at a fixed out-of-cache size.
func BenchmarkAblationBlockShuffleFanout(b *testing.B) {
	const n = 1 << 22
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	for _, fanout := range []int{8, 32, 64, 128, 512} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			src := xrand.NewXoshiro256(2)
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				seqperm.BlockShuffle(src, data, seqperm.BlockShuffleOptions{Fanout: fanout})
			}
		})
	}
}

// BenchmarkAblationBlockShuffleThreshold sweeps the leaf size at which
// the block shuffle falls back to Fisher-Yates.
func BenchmarkAblationBlockShuffleThreshold(b *testing.B) {
	const n = 1 << 22
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	for _, thr := range []int{1 << 12, 1 << 15, 1 << 18} {
		b.Run(fmt.Sprintf("leaf=%d", thr), func(b *testing.B) {
			src := xrand.NewXoshiro256(3)
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				seqperm.BlockShuffle(src, data, seqperm.BlockShuffleOptions{Threshold: thr})
			}
		})
	}
}

// BenchmarkAblationMultivariate compares the iterative (Algorithm 2) and
// recursive conditioning chains for the multivariate hypergeometric.
func BenchmarkAblationMultivariate(b *testing.B) {
	for _, p := range []int{16, 128, 1024} {
		classes := make([]int64, p)
		for i := range classes {
			classes[i] = 1 << 14
		}
		tt := mhyper.Sum(classes) / 2
		b.Run(fmt.Sprintf("iter/p=%d", p), func(b *testing.B) {
			src := xrand.NewXoshiro256(4)
			out := make([]int64, p)
			for i := 0; i < b.N; i++ {
				mhyper.SampleInto(src, tt, classes, out)
			}
		})
		b.Run(fmt.Sprintf("rec/p=%d", p), func(b *testing.B) {
			src := xrand.NewXoshiro256(4)
			for i := 0; i < b.N; i++ {
				mhyper.SampleRec(src, tt, classes)
			}
		})
	}
}

// BenchmarkAblationMatrixAlg compares all three matrix strategies inside
// the full Algorithm 1 pipeline, isolating the matrix term from the
// (identical) shuffle and exchange phases.
func BenchmarkAblationMatrixAlg(b *testing.B) {
	const n = 1 << 19
	const p = 32
	sizes := core.EvenBlocks(n, p)
	for _, alg := range []core.MatrixAlg{core.MatrixSeq, core.MatrixLog, core.MatrixOpt} {
		b.Run(alg.String(), func(b *testing.B) {
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				blocks, _ := core.Split(core.Iota(n), sizes)
				if _, _, err := core.Permute(blocks, sizes, core.Config{
					Seed: uint64(i), Matrix: alg,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationExchangeGranularity measures the all-to-all with the
// same volume split into different message counts per pair.
func BenchmarkAblationExchangeGranularity(b *testing.B) {
	const p = 8
	const perPair = 1 << 12 // int64s from each proc to each proc
	for _, chunks := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			m := pro.NewMachine(p)
			payload := make([]int64, perPair/chunks)
			err := m.Run(func(pr *pro.Proc) {
				for i := 0; i < b.N; i++ {
					for c := 0; c < chunks; c++ {
						for dst := 0; dst < p; dst++ {
							pr.Send(dst, payload)
						}
						for src := 0; src < p; src++ {
							pr.Recv(src)
						}
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationSeqMatrixSamplers compares Algorithm 3 with the
// recursive Algorithm 4 across margin counts.
func BenchmarkAblationSeqMatrixSamplers(b *testing.B) {
	for _, p := range []int{16, 64, 256} {
		margins := core.EvenBlocks(int64(p)*(1<<12), p)
		b.Run(fmt.Sprintf("alg3/p=%d", p), func(b *testing.B) {
			src := xrand.NewXoshiro256(5)
			for i := 0; i < b.N; i++ {
				commat.SampleSeq(src, margins, margins)
			}
		})
		b.Run(fmt.Sprintf("alg4/p=%d", p), func(b *testing.B) {
			src := xrand.NewXoshiro256(5)
			for i := 0; i < b.N; i++ {
				commat.SampleRec(src, margins, margins)
			}
		})
	}
}
