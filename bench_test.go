// bench_test.go wires the paper's evaluation (experiments E1..E8, see
// DESIGN.md and EXPERIMENTS.md) into testing.B, one benchmark per
// experiment, plus the micro-benchmarks behind them; E9's benchmark
// lives next to its substrate (extmem.BenchmarkExternalShuffle) and E10
// is a deterministic cost-model table with nothing to time. The
// permbench command produces the full paper-style tables; these
// benchmarks make the same workloads repeatable under `go test -bench`.
package randperm_test

import (
	"fmt"
	"testing"

	"randperm"
	"randperm/internal/commat"
	"randperm/internal/core"
	"randperm/internal/xrand"
)

// BenchmarkE1SeqShuffle measures the sequential reference algorithm's
// cost per item (paper: 60-100 cycles/item, memory bound).
func BenchmarkE1SeqShuffle(b *testing.B) {
	for _, n := range []int{1 << 20, 1 << 23} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := randperm.NewSource(1)
			data := make([]int64, n)
			for i := range data {
				data[i] = int64(i)
			}
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				randperm.Shuffle(src, data)
			}
		})
	}
}

// BenchmarkE2HyperDraws measures hypergeometric sampling cost at the
// paper's large-parameter regime (the draws-per-sample table comes from
// permbench -exp E2).
func BenchmarkE2HyperDraws(b *testing.B) {
	cases := []struct{ t, w, bl int64 }{
		{100, 1000, 1000},
		{1000000, 10000000, 10000000},
		{100000000, 1000000000, 1000000000},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("t=%d", c.t), func(b *testing.B) {
			src := randperm.NewSource(2)
			for i := 0; i < b.N; i++ {
				randperm.Hypergeometric(src, c.t, c.w, c.bl)
			}
		})
	}
}

// BenchmarkE3Scaling is the paper's Section 6 headline series: Algorithm
// 1 across machine sizes (the table with the Origin 2000 comparison comes
// from permbench -exp E3).
func BenchmarkE3Scaling(b *testing.B) {
	const n = 1 << 21
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	for _, p := range []int{1, 3, 6, 12, 24, 48} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			if p == 1 {
				src := randperm.NewSource(3)
				b.SetBytes(8 * n)
				for i := 0; i < b.N; i++ {
					randperm.Shuffle(src, data)
				}
				return
			}
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				_, _, err := randperm.ParallelShuffle(data, randperm.Options{
					Procs: p, Seed: uint64(i), Matrix: randperm.MatrixOpt,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackends races the four execution backends on the same
// workload (the acceptance workload of the backend refactor: n=2^20,
// p=8). The Sim backend pays for mailboxes, `any` boxing and draw
// accounting; SharedMem scatters through precomputed disjoint offsets;
// InPlace runs the MergeShuffle merge tree with zero per-item auxiliary
// memory; Bijective evaluates a 12-round Feistel network per item (its
// materializing form — the backend exists for streaming, where it is
// the only one that can skip materializing at all).
func BenchmarkBackends(b *testing.B) {
	const n = 1 << 20
	const p = 8
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	backends := []randperm.Backend{
		randperm.BackendSim, randperm.BackendSharedMem,
		randperm.BackendInPlace, randperm.BackendBijective,
	}
	for _, backend := range backends {
		b.Run(backend.String(), func(b *testing.B) {
			b.SetBytes(8 * n)
			for i := 0; i < b.N; i++ {
				_, _, err := randperm.ParallelShuffle(data, randperm.Options{
					Procs: p, Seed: uint64(i), Backend: backend,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPermuterChunk measures the streaming path: pulling one 64Ki
// page of an n=2^40 permutation through Permuter.Chunk on the bijective
// backend — the workload where no other backend can even start, since
// materializing 2^40 indexes is 8 TB. ns/op divided by 65536 is the
// per-index cost of the Feistel evaluation including cycle-walking.
func BenchmarkPermuterChunk(b *testing.B) {
	const page = 1 << 16
	pm, err := randperm.NewPermuter(1<<40, randperm.Options{
		Seed: 9, Backend: randperm.BackendBijective,
	})
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]int64, page)
	b.SetBytes(8 * page)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (int64(i) * page) % (1<<40 - page)
		if _, err := pm.Chunk(dst, start); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Matrix covers Theorem 2: the three matrix sampling
// strategies across machine sizes.
func BenchmarkE4Matrix(b *testing.B) {
	for _, p := range []int{16, 64, 128} {
		margins := core.EvenBlocks(int64(p)*(1<<14), p)
		b.Run(fmt.Sprintf("seq/p=%d", p), func(b *testing.B) {
			src := xrand.NewXoshiro256(4)
			for i := 0; i < b.N; i++ {
				commat.SampleSeq(src, margins, margins)
			}
		})
		b.Run(fmt.Sprintf("rec/p=%d", p), func(b *testing.B) {
			src := xrand.NewXoshiro256(4)
			for i := 0; i < b.N; i++ {
				commat.SampleRec(src, margins, margins)
			}
		})
		b.Run(fmt.Sprintf("log/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SampleRows(p, uint64(i), margins, margins, core.MatrixLog); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("opt/p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SampleRows(p, uint64(i), margins, margins, core.MatrixOpt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5UniformityKernel measures the per-trial cost of the
// exhaustive uniformity experiment (the verdict table comes from
// permbench -exp E5).
func BenchmarkE5UniformityKernel(b *testing.B) {
	sizes := []int64{2, 2, 2}
	for i := 0; i < b.N; i++ {
		blocks, err := core.Split(core.Iota(6), sizes)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.Permute(blocks, sizes, core.Config{
			Seed: uint64(i), Matrix: core.MatrixOpt,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Balance compares Algorithm 1 against the unbalanced/rejection
// baselines at a fixed machine size.
func BenchmarkE6Balance(b *testing.B) {
	const n = 1 << 16
	const p = 16
	sizes := core.EvenBlocks(n, p)
	b.Run("alg1", func(b *testing.B) {
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			blocks, _ := core.Split(core.Iota(n), sizes)
			if _, _, err := core.Permute(blocks, sizes, core.Config{
				Seed: uint64(i), Matrix: core.MatrixOpt,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7Coarsen measures the self-similarity experiment kernel: one
// matrix sample plus the Proposition 4 coarsening.
func BenchmarkE7Coarsen(b *testing.B) {
	p := 12
	margins := core.EvenBlocks(int64(p)*40, p)
	src := xrand.NewXoshiro256(7)
	for i := 0; i < b.N; i++ {
		m := commat.SampleSeq(src, margins, margins)
		commat.Coarsen(m, []int{5}, []int{7})
	}
}

// BenchmarkE8BlockShuffle is the paper's outlook: the cache-friendly
// sequential shuffle against Fisher-Yates on an out-of-cache vector.
func BenchmarkE8BlockShuffle(b *testing.B) {
	const n = 1 << 23 // 64 MiB of int64: well beyond L3
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	b.Run("fisher-yates", func(b *testing.B) {
		src := randperm.NewSource(8)
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			randperm.Shuffle(src, data)
		}
	})
	b.Run("block", func(b *testing.B) {
		src := randperm.NewSource(8)
		b.SetBytes(8 * n)
		for i := 0; i < b.N; i++ {
			randperm.BlockShuffle(src, data)
		}
	})
}
